package pagefile

import (
	"errors"
	"testing"
)

func fill(b byte) []byte {
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestVersionedCOWViolation(t *testing.T) {
	vs := NewVersionedStore(NewMemStore(), 0)
	id, err := vs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.Write(id, fill(1)); err != nil {
		t.Fatalf("write to fresh page: %v", err)
	}
	if err := vs.Commit("epoch1"); err != nil {
		t.Fatal(err)
	}
	if err := vs.Write(id, fill(2)); !errors.Is(err, ErrCOWViolation) {
		t.Fatalf("in-place write to committed page: got %v, want ErrCOWViolation", err)
	}
	vs.MarkInPlace(id)
	if err := vs.Write(id, fill(2)); err != nil {
		t.Fatalf("write to exempted page: %v", err)
	}
}

func TestVersionedDeferredFreeAndPins(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	old, _ := vs.Alloc()
	if err := vs.Write(old, fill(7)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}

	// Reader pins epoch 1; writer retires the page and commits epoch 2.
	_, epoch, release := vs.Pin()
	if epoch != 1 {
		t.Fatalf("pinned epoch %d, want 1", epoch)
	}
	if err := vs.Free(old); err != nil {
		t.Fatal(err)
	}
	tombstoned := false
	vs.Deferred(func() error { tombstoned = true; return nil })
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot must still read the retired page's bytes.
	buf := make([]byte, PageSize)
	if err := vs.Read(old, buf); err != nil || buf[0] != 7 {
		t.Fatalf("pinned read: err=%v buf[0]=%d", err, buf[0])
	}
	if tombstoned {
		t.Fatal("deferred hook ran while an older snapshot was pinned")
	}
	if _, pins, pending := vs.GCStats(); pins != 1 || pending != 1 {
		t.Fatalf("GCStats pins=%d pending=%d, want 1/1", pins, pending)
	}

	// Release + writer-side reclaim frees the page and runs the hook.
	release()
	release() // idempotent
	if err := vs.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if !tombstoned {
		t.Fatal("deferred hook did not run after the pin drained")
	}
	if err := vs.Read(old, buf); err == nil {
		t.Fatal("read of reclaimed page succeeded")
	}
	if _, pins, pending := vs.GCStats(); pins != 0 || pending != 0 {
		t.Fatalf("GCStats after reclaim pins=%d pending=%d, want 0/0", pins, pending)
	}
}

func TestVersionedFreshFreeIsImmediate(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	id, _ := vs.Alloc()
	if err := vs.Free(id); err != nil {
		t.Fatal(err)
	}
	if n := inner.NumPages(); n != 0 {
		t.Fatalf("fresh free left %d live pages", n)
	}
	if _, _, pending := vs.GCStats(); pending != 0 {
		t.Fatalf("fresh free deferred %d pages", pending)
	}
}

func TestVersionedRollback(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	committed, _ := vs.Alloc()
	if err := vs.Write(committed, fill(3)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}

	// A failed batch: one shadow page allocated, the committed page retired.
	shadow, _ := vs.Alloc()
	if err := vs.Write(shadow, fill(4)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Free(committed); err != nil {
		t.Fatal(err)
	}
	if err := vs.Rollback(); err != nil {
		t.Fatal(err)
	}

	// The shadow page is gone, the committed page is intact and writable
	// only via COW (its deferred free was dropped).
	buf := make([]byte, PageSize)
	if err := vs.Read(committed, buf); err != nil || buf[0] != 3 {
		t.Fatalf("committed page after rollback: err=%v buf[0]=%d", err, buf[0])
	}
	if err := vs.Read(shadow, buf); err == nil {
		t.Fatal("shadow page survived rollback")
	}
	if _, _, pending := vs.GCStats(); pending != 0 {
		t.Fatalf("rollback left %d pending pages", pending)
	}
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := vs.Read(committed, buf); err != nil || buf[0] != 3 {
		t.Fatalf("committed page after post-rollback commit: err=%v buf[0]=%d", err, buf[0])
	}
}

func TestVersionedCommitPublishesStateAtomically(t *testing.T) {
	vs := NewVersionedStore(NewMemStore(), 5)
	if e := vs.Epoch(); e != 5 {
		t.Fatalf("seeded epoch %d, want 5", e)
	}
	vs.SeedState("recovered")
	st, epoch, release := vs.Pin()
	if st != "recovered" || epoch != 5 {
		t.Fatalf("pin got (%v, %d), want (recovered, 5)", st, epoch)
	}
	release()
	if err := vs.Commit("next"); err != nil {
		t.Fatal(err)
	}
	st, epoch, release = vs.Pin()
	defer release()
	if st != "next" || epoch != 6 {
		t.Fatalf("pin got (%v, %d), want (next, 6)", st, epoch)
	}
}
