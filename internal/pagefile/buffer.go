package pagefile

import (
	"container/list"
	"fmt"
)

// BufferPool is a write-back LRU page cache over a Store. It exists as a
// performance layer: the experiments count *logical* node accesses the way
// the paper does, while the pool keeps repeated physical reads cheap.
//
// Access discipline: Get returns the pool's internal frame; callers must
// finish with the slice before the next pool call (the trees deserialize
// immediately). Not safe for concurrent use — wrap externally if needed.
type BufferPool struct {
	store    Store
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recent
	hits     int64
	misses   int64
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps store with an LRU cache of the given page capacity
// (minimum 1).
func NewBufferPool(store Store, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the page contents, reading through on a miss.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	if el, ok := bp.frames[id]; ok {
		bp.hits++
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	bp.misses++
	fr := &frame{id: id, data: make([]byte, PageSize)}
	if err := bp.store.Read(id, fr.data); err != nil {
		return nil, err
	}
	if err := bp.insert(fr); err != nil {
		return nil, err
	}
	return fr.data, nil
}

// Put stores page contents (marking the frame dirty; flushed on eviction or
// Flush).
func (bp *BufferPool) Put(id PageID, data []byte) error {
	if len(data) != PageSize {
		return ErrBadLength
	}
	if el, ok := bp.frames[id]; ok {
		fr := el.Value.(*frame)
		copy(fr.data, data)
		fr.dirty = true
		bp.lru.MoveToFront(el)
		return nil
	}
	fr := &frame{id: id, data: make([]byte, PageSize), dirty: true}
	copy(fr.data, data)
	return bp.insert(fr)
}

func (bp *BufferPool) insert(fr *frame) error {
	for bp.lru.Len() >= bp.capacity {
		back := bp.lru.Back()
		victim := back.Value.(*frame)
		if victim.dirty {
			if err := bp.store.Write(victim.id, victim.data); err != nil {
				return fmt.Errorf("pagefile: evicting page %d: %w", victim.id, err)
			}
		}
		bp.lru.Remove(back)
		delete(bp.frames, victim.id)
	}
	bp.frames[fr.id] = bp.lru.PushFront(fr)
	return nil
}

// Invalidate drops a page from the cache without writing it back; used when
// the underlying page is freed.
func (bp *BufferPool) Invalidate(id PageID) {
	if el, ok := bp.frames[id]; ok {
		bp.lru.Remove(el)
		delete(bp.frames, id)
	}
}

// Flush writes back every dirty frame.
func (bp *BufferPool) Flush() error {
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := bp.store.Write(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// HitRate reports cache effectiveness (hits, misses).
func (bp *BufferPool) HitRate() (hits, misses int64) { return bp.hits, bp.misses }
