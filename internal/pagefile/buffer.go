package pagefile

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool is a write-back LRU page cache over a Store. It exists as a
// performance layer: the experiments count *logical* node accesses the way
// the paper does, while the pool keeps repeated physical reads cheap.
//
// The pool is sharded: each page maps to one of up to 16 mutex-guarded LRU
// shards by PageID, so concurrent readers on different pages rarely contend,
// and the hit/miss counters are atomic. Concurrency contract: any number of
// goroutines may call Get/Put/Invalidate/Flush concurrently without
// corrupting the pool. Get returns the pool's internal frame, shared with
// other readers of the same page; callers that mutate a page (Put) or free
// it (Invalidate) while another goroutine could still read its frame must
// guarantee externally that no reader reaches that page. The tree does so
// with the copy-on-write epoch discipline (VersionedStore): a writer only
// Puts shadow pages no committed root references, and Invalidate runs only
// on pages retired from every epoch a live snapshot pins.
type BufferPool struct {
	store  Store
	shards []bufShard
	hits   atomic.Int64
	misses atomic.Int64

	// evictMu/evictErr stash the first dirty-victim write-back failure hit
	// on a read path (GetMiss cannot return it without failing a read that
	// succeeded). Surfaced at the next Flush, mirroring the reclaimer's
	// deferred-error pattern; the failed victim stays dirty in the pool, so
	// no data is lost while the error travels.
	evictMu  sync.Mutex
	evictErr error
}

// bufShard is one mutex-guarded LRU slice of the pool.
type bufShard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recent
	// loading coordinates concurrent misses on the same page: the first
	// Get reads the store, later Gets wait on the entry instead of
	// duplicating the (possibly slow) read.
	loading map[PageID]*pageLoad
}

// pageLoad is an in-flight store read; done is closed once data/err are set.
type pageLoad struct {
	done chan struct{}
	data []byte
	err  error
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

const (
	// maxShards bounds the shard count (power of two for cheap masking).
	maxShards = 16
	// minShardPages keeps shards from degenerating to single-frame LRUs on
	// small pools: a shard is only added while every shard keeps ≥ 4 pages.
	minShardPages = 4
)

// NewBufferPool wraps store with an LRU cache of the given total page
// capacity (minimum 1), split across shards. Small pools get a single shard,
// preserving exact global-LRU eviction order; larger pools trade that for
// parallelism.
func NewBufferPool(store Store, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n*2 <= maxShards && capacity/(n*2) >= minShardPages {
		n *= 2
	}
	bp := &BufferPool{store: store, shards: make([]bufShard, n)}
	for i := range bp.shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		bp.shards[i] = bufShard{
			capacity: c,
			frames:   make(map[PageID]*list.Element),
			lru:      list.New(),
			loading:  make(map[PageID]*pageLoad),
		}
	}
	return bp
}

func (bp *BufferPool) shard(id PageID) *bufShard {
	return &bp.shards[int(id)&(len(bp.shards)-1)]
}

// Get returns the page contents, reading through on a miss. Concurrent
// misses on the same page coalesce into one store read: the first caller
// fills the frame, the rest wait on it. Every Get counts exactly one hit
// (cached) or one miss (waited for storage).
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	data, _, err := bp.GetMiss(id)
	return data, err
}

// GetMiss is Get plus a per-call miss report: miss is true when this call
// waited for storage (fresh read or joined an in-flight load) rather than
// being served from a cached frame. Query page budgets charge exactly the
// misses, so they need the per-call signal the aggregate counters can't
// give.
func (bp *BufferPool) GetMiss(id PageID) (data []byte, miss bool, err error) {
	sh := bp.shard(id)
	sh.mu.Lock()
	if el, ok := sh.frames[id]; ok {
		sh.lru.MoveToFront(el)
		data := el.Value.(*frame).data
		sh.mu.Unlock()
		bp.hits.Add(1)
		return data, false, nil
	}
	if pl, ok := sh.loading[id]; ok {
		sh.mu.Unlock()
		bp.misses.Add(1)
		<-pl.done
		return pl.data, true, pl.err
	}
	pl := &pageLoad{done: make(chan struct{})}
	sh.loading[id] = pl
	sh.mu.Unlock()

	// Read outside the shard lock so misses on different pages of the same
	// shard overlap their store I/O.
	bp.misses.Add(1)
	fr := &frame{id: id, data: make([]byte, PageSize)}
	err = bp.store.Read(id, fr.data)

	var evictErr error
	sh.mu.Lock()
	delete(sh.loading, id)
	if err == nil {
		if el, ok := sh.frames[id]; ok {
			// A Put cached the page while we read the store; its frame may
			// carry buffered contents, so serve that copy, not ours.
			sh.lru.MoveToFront(el)
			fr = el.Value.(*frame)
		} else {
			evictErr = sh.insert(bp.store, fr)
		}
	}
	sh.mu.Unlock()

	if err != nil {
		pl.err = err
		close(pl.done)
		return nil, true, err
	}
	if evictErr != nil {
		// The read succeeded; only a dirty victim's write-back failed. The
		// victim stays dirty in the pool — serve the data and surface the
		// write failure at the next Flush rather than failing this read.
		bp.stashEvictErr(evictErr)
	}
	pl.data = fr.data
	close(pl.done)
	return fr.data, true, nil
}

// stashEvictErr records the first deferred eviction write-back failure.
func (bp *BufferPool) stashEvictErr(err error) {
	bp.evictMu.Lock()
	if bp.evictErr == nil {
		bp.evictErr = err
	}
	bp.evictMu.Unlock()
}

// takeEvictErr returns and clears the stashed eviction failure.
func (bp *BufferPool) takeEvictErr() error {
	bp.evictMu.Lock()
	err := bp.evictErr
	bp.evictErr = nil
	bp.evictMu.Unlock()
	return err
}

// Contains reports whether the page is currently cached (a Get would hit).
// Budgeted queries use it to refuse a fetch that would exceed the budget
// before touching storage; the answer is advisory under concurrency — an
// eviction between Contains and Get turns the predicted hit into a miss.
func (bp *BufferPool) Contains(id PageID) bool {
	sh := bp.shard(id)
	sh.mu.Lock()
	_, ok := sh.frames[id]
	sh.mu.Unlock()
	return ok
}

// Put stores page contents (marking the frame dirty; flushed on eviction or
// Flush). A returned error reports a dirty VICTIM's failed write-back, not
// a failure to cache data: the put page is in the pool (dirty) either way,
// and the victim stays dirty too.
func (bp *BufferPool) Put(id PageID, data []byte) error {
	if len(data) != PageSize {
		return ErrBadLength
	}
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[id]; ok {
		fr := el.Value.(*frame)
		copy(fr.data, data)
		fr.dirty = true
		sh.lru.MoveToFront(el)
		return nil
	}
	fr := &frame{id: id, data: make([]byte, PageSize), dirty: true}
	copy(fr.data, data)
	return sh.insert(bp.store, fr)
}

// insert places fr in the shard, evicting from the shard's LRU tail as
// needed. Callers hold sh.mu. Dirty-victim write-back happens under the
// shard lock — moving it outside would need in-flight tracking to stop a
// concurrent Get from re-reading the not-yet-written page; read-heavy
// phases avoid the stall by flushing beforehand (Tree.Flush), after which
// query-path evictions are all clean.
//
// A failed dirty-victim write-back must not lose data in either
// direction: the victim stays in the pool, still dirty (its bytes exist
// nowhere else), AND fr is inserted anyway — the shard runs one frame
// over capacity until a later eviction or Flush succeeds. The error is
// returned for the caller to surface or stash.
func (sh *bufShard) insert(store Store, fr *frame) error {
	var evictErr error
	for sh.lru.Len() >= sh.capacity {
		back := sh.lru.Back()
		victim := back.Value.(*frame)
		if victim.dirty {
			if err := store.Write(victim.id, victim.data); err != nil {
				evictErr = fmt.Errorf("pagefile: evicting page %d: %w", victim.id, err)
				break
			}
		}
		sh.lru.Remove(back)
		delete(sh.frames, victim.id)
	}
	sh.frames[fr.id] = sh.lru.PushFront(fr)
	return evictErr
}

// Invalidate drops a page from the cache without writing it back; used when
// the underlying page is freed.
func (bp *BufferPool) Invalidate(id PageID) {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[id]; ok {
		sh.lru.Remove(el)
		delete(sh.frames, id)
	}
}

// Flush writes back every dirty frame. It attempts ALL frames even after
// a failure — a single bad page must not pin every other dirty page in
// memory — and returns the first error; frames whose write failed stay
// dirty for the next attempt. A write-back failure stashed by an earlier
// eviction surfaces here too.
func (bp *BufferPool) Flush() error {
	first := bp.takeEvictErr()
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			fr := el.Value.(*frame)
			if fr.dirty {
				if err := bp.store.Write(fr.id, fr.data); err != nil {
					if first == nil {
						first = fmt.Errorf("pagefile: flushing page %d: %w", fr.id, err)
					}
					continue
				}
				fr.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return first
}

// Dirty reports the number of dirty frames across all shards — test
// instrumentation for the error-path contract that failed write-backs
// keep their frames dirty.
func (bp *BufferPool) Dirty() int {
	n := 0
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			if el.Value.(*frame).dirty {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// HitRate reports cache effectiveness (hits, misses).
func (bp *BufferPool) HitRate() (hits, misses int64) {
	return bp.hits.Load(), bp.misses.Load()
}
