package pagefile

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// trackingStore wraps MemStore and records the concurrent-read high-water
// mark, so tests can assert the prefetcher's in-flight bound.
type trackingStore struct {
	*MemStore
	delay    time.Duration
	inFlight atomic.Int64
	highMark atomic.Int64
}

func (ts *trackingStore) Read(id PageID, buf []byte) error {
	cur := ts.inFlight.Add(1)
	for {
		hi := ts.highMark.Load()
		if cur <= hi || ts.highMark.CompareAndSwap(hi, cur) {
			break
		}
	}
	if ts.delay > 0 {
		time.Sleep(ts.delay)
	}
	err := ts.MemStore.Read(id, buf)
	ts.inFlight.Add(-1)
	return err
}

func newTrackingStore(t *testing.T, pages int, delay time.Duration) (*trackingStore, []PageID) {
	t.Helper()
	ts := &trackingStore{MemStore: NewMemStore(), delay: delay}
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := ts.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, PageSize)
		buf[0] = byte(id)
		if err := ts.MemStore.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ts, ids
}

func TestPrefetchReadBatchOrderAndContents(t *testing.T) {
	ts, ids := newTrackingStore(t, 32, 0)
	ses := NewPrefetcher(4).NewSessionCtx(context.Background(), AsGetter(ts))
	pages, err := ses.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != len(ids) {
		t.Fatalf("got %d pages, want %d", len(pages), len(ids))
	}
	for i, p := range pages {
		if p[0] != byte(ids[i]) {
			t.Fatalf("page %d: stamped %d, want %d", i, p[0], byte(ids[i]))
		}
	}
	st := ses.Drain()
	if st.Issued != len(ids) || st.Wasted != 0 {
		t.Fatalf("stats = %+v, want issued=%d wasted=0", st, len(ids))
	}
}

func TestPrefetchBoundsInFlight(t *testing.T) {
	const workers = 3
	ts, ids := newTrackingStore(t, 24, 2*time.Millisecond)
	ses := NewPrefetcher(workers).NewSessionCtx(context.Background(), AsGetter(ts))
	if _, err := ses.ReadBatch(ids); err != nil {
		t.Fatal(err)
	}
	ses.Drain()
	if hi := ts.highMark.Load(); hi > workers {
		t.Fatalf("observed %d concurrent reads, bound is %d", hi, workers)
	}
	if hi := ts.highMark.Load(); hi < 2 {
		t.Fatalf("observed %d concurrent reads: prefetches did not overlap", hi)
	}
}

func TestPrefetchDedupAndWaste(t *testing.T) {
	ts, ids := newTrackingStore(t, 8, time.Millisecond)
	ses := NewPrefetcher(2).NewSessionCtx(context.Background(), AsGetter(ts))

	// Double-prefetch the same pages: the second round must coalesce.
	ses.Prefetch(ids[:4]...)
	ses.Prefetch(ids[:4]...)
	// Claim two; the two never-claimed fetches count as wasted.
	for _, id := range ids[:2] {
		if p, err := ses.Get(id); err != nil || p[0] != byte(id) {
			t.Fatalf("Get(%d) = %v, %v", id, p, err)
		}
	}
	st := ses.Drain()
	if st.Issued != 4 || st.Coalesced != 4 || st.Wasted != 2 {
		t.Fatalf("stats = %+v, want issued=4 coalesced=4 wasted=2", st)
	}
	physReads, _, _, _ := ts.Stats().Snapshot()
	if physReads != 4 {
		t.Fatalf("%d physical reads, want 4 (dedup failed)", physReads)
	}
}

func TestPrefetchGetWithoutPrefetchReadsDirectly(t *testing.T) {
	ts, ids := newTrackingStore(t, 2, 0)
	ses := NewPrefetcher(2).NewSessionCtx(context.Background(), AsGetter(ts))
	p, err := ses.Get(ids[1])
	if err != nil || p[0] != byte(ids[1]) {
		t.Fatalf("Get = %v, %v", p, err)
	}
	st := ses.Drain()
	if st.Issued != 0 || st.Wasted != 0 {
		t.Fatalf("direct Get must not touch prefetch stats, got %+v", st)
	}
}

// TestPrefetchConcurrentSessions hammers many sessions over one shared
// Prefetcher (the per-index sharing pattern) under -race.
func TestPrefetchConcurrentSessions(t *testing.T) {
	ts, ids := newTrackingStore(t, 64, 100*time.Microsecond)
	pf := NewPrefetcher(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ses := pf.NewSessionCtx(context.Background(), AsGetter(ts))
			defer ses.Drain()
			for i := 0; i < 20; i++ {
				id := ids[(w*7+i*3)%len(ids)]
				ses.Prefetch(id)
				p, err := ses.Get(id)
				if err != nil || p[0] != byte(id) {
					t.Errorf("worker %d: Get(%d) = %v, %v", w, id, p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if hi := ts.highMark.Load(); hi > 4+8 {
		// Each session may also issue direct Gets outside the bound; only
		// prefetched reads are bounded, so allow workers + sessions.
		t.Fatalf("observed %d concurrent reads", hi)
	}
}
