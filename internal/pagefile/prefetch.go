package pagefile

import (
	"context"
	"sync"
)

// This file is the intra-query I/O pipelining layer: an asynchronous page
// prefetcher that lets one traversal overlap the independent page fetches
// it already knows it will need (all surviving children of a node, all
// refinement data pages of a candidate set, the pages behind the next few
// NN heap entries). On latency-bound storage — the paper's cost model
// charges a disk latency per page access — a serial query pays every fetch
// as a sequential stall; issuing them concurrently caps the stall at
// roughly ceil(pages / workers) latencies instead of pages latencies,
// without changing which pages are read or the order results are produced.

// Getter is the read side of a page source. *BufferPool satisfies it
// directly (prefetching through the pool warms the cache for the eventual
// claim); AsGetter adapts any raw Store.
type Getter interface {
	Get(id PageID) ([]byte, error)
}

// storeGetter adapts a Store to Getter with a fresh buffer per read.
type storeGetter struct{ s Store }

func (g storeGetter) Get(id PageID) ([]byte, error) {
	buf := make([]byte, PageSize)
	if err := g.s.Read(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AsGetter wraps a raw Store as a Getter, so the prefetcher can pipeline
// reads that bypass the buffer pool (e.g. data-file pages).
func AsGetter(s Store) Getter { return storeGetter{s} }

// PrefetchStats counts a session's prefetch work.
type PrefetchStats struct {
	// Issued is the number of async reads actually started.
	Issued int
	// Coalesced is the number of Prefetch requests that found the page
	// already in flight and joined it instead of issuing a second read.
	Coalesced int
	// Wasted is the number of issued reads that completed without any Get
	// ever claiming them — speculation that didn't pay off (counted at
	// Drain).
	Wasted int
}

// Add accumulates o into s (the merge rule for stats aggregation).
func (s *PrefetchStats) Add(o PrefetchStats) {
	s.Issued += o.Issued
	s.Coalesced += o.Coalesced
	s.Wasted += o.Wasted
}

// Prefetcher bounds the async page reads in flight at any moment. One
// Prefetcher is shared by all queries on an index so the bound is global;
// each query opens its own PrefetchSession, so sessions never contend on
// a shared result map (cross-query dedup of pool-backed pages already
// happens inside BufferPool's single-flight Get).
type Prefetcher struct {
	workers int
	sem     chan struct{}
}

// NewPrefetcher creates a prefetcher allowing up to workers concurrent
// in-flight reads (minimum 1).
func NewPrefetcher(workers int) *Prefetcher {
	if workers < 1 {
		workers = 1
	}
	return &Prefetcher{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers reports the in-flight bound.
func (p *Prefetcher) Workers() int { return p.workers }

// NewSessionCtx opens a prefetch session over src, bound to ctx. A
// session belongs to one query: exactly one goroutine issues
// Prefetch/Get/ReadBatch calls, while the session's own fetch goroutines
// run concurrently under the shared in-flight bound. Call Drain before
// abandoning the session. Once ctx is cancelled the session stops
// touching storage — scheduled-but-unstarted fetches fail with ctx.Err()
// instead of being read, and Get reports the same error — so a cancelled
// query's Drain only waits out the reads already in flight (at most the
// worker bound), not its whole scheduled backlog. A nil ctx means the
// session is never cancelled.
func (p *Prefetcher) NewSessionCtx(ctx context.Context, src Getter) *PrefetchSession {
	if ctx == nil {
		ctx = context.Background()
	}
	return &PrefetchSession{pf: p, src: src, ctx: ctx, inflight: make(map[PageID]*pageFetch)}
}

// pageFetch is one async read; done is closed once data/err are set.
type pageFetch struct {
	id   PageID
	done chan struct{}
	data []byte
	err  error
}

// PrefetchSession tracks one query's in-flight prefetches with
// single-flight dedup: a page is fetched at most once while unclaimed.
type PrefetchSession struct {
	pf  *Prefetcher
	src Getter
	ctx context.Context

	mu       sync.Mutex
	inflight map[PageID]*pageFetch
	queue    []*pageFetch // scheduled, not yet picked up by a drainer
	drainers int          // fetch goroutines alive, ≤ pf.workers
	maxIssue int          // async-issue cap; 0 = unlimited (see LimitIssued)
	wg       sync.WaitGroup
	stats    PrefetchStats
}

// LimitIssued caps the async reads this session may issue over its
// lifetime; requests past the cap are silently dropped and the eventual
// Get falls back to a synchronous read, so results are unaffected — only
// how much speculation the session is allowed to do. The adaptive planner
// uses it to bound a query's speculative I/O near its predicted access
// count. Call before the first Prefetch; 0 means unlimited.
func (s *PrefetchSession) LimitIssued(n int) {
	s.mu.Lock()
	s.maxIssue = n
	s.mu.Unlock()
}

// Prefetch schedules async reads for ids. It never blocks on I/O: requests
// are queued and drained FIFO by at most the prefetcher's worker count of
// fetch goroutines (so a query prefetching hundreds of refinement pages
// costs `workers` goroutines, not hundreds). Pages already scheduled and
// not yet claimed are coalesced.
func (s *PrefetchSession) Prefetch(ids ...PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if _, ok := s.inflight[id]; ok {
			s.stats.Coalesced++
			continue
		}
		if s.maxIssue > 0 && s.stats.Issued >= s.maxIssue {
			continue // past the speculation cap; Get will read synchronously
		}
		f := &pageFetch{id: id, done: make(chan struct{})}
		s.inflight[id] = f
		s.queue = append(s.queue, f)
		s.stats.Issued++
		if s.drainers < s.pf.workers {
			s.drainers++
			s.wg.Add(1)
			go s.drain()
		}
	}
}

// drain pops scheduled fetches until the queue is empty. Each read holds
// one slot of the prefetcher's shared in-flight bound, so concurrent
// sessions on one index still respect the global limit. A cancelled
// session context aborts the backlog: queued fetches are failed with
// ctx.Err() without touching storage.
func (s *PrefetchSession) drain() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.drainers--
			s.mu.Unlock()
			return
		}
		if err := s.ctx.Err(); err != nil {
			for _, f := range s.queue {
				f.err = err
				close(f.done)
			}
			s.queue = nil
			s.drainers--
			s.mu.Unlock()
			return
		}
		f := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		s.pf.sem <- struct{}{}
		f.data, f.err = s.src.Get(f.id)
		<-s.pf.sem
		close(f.done)
	}
}

// Get returns the page contents, claiming the in-flight fetch when one
// exists (waiting for it to land) and falling back to a direct synchronous
// read otherwise. A claimed page leaves the dedup map, so a later Prefetch
// of the same id issues a fresh read — mirroring the serial path's I/O
// counting.
func (s *PrefetchSession) Get(id PageID) ([]byte, error) {
	s.mu.Lock()
	f, ok := s.inflight[id]
	if ok {
		delete(s.inflight, id)
	}
	s.mu.Unlock()
	if !ok {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		return s.src.Get(id)
	}
	<-f.done
	return f.data, f.err
}

// ReadBatch is the whole-batch convenience over Prefetch+Get: fetch ids
// concurrently (bounded by the prefetcher's worker count) and return their
// contents in input order. Callers that can do useful work between claims
// — like the query descent, which filters each node while its siblings
// are still in flight — should call Prefetch once and Get per page
// instead. The first error is returned; the remaining fetches still land
// and are reclaimed by Drain.
func (s *PrefetchSession) ReadBatch(ids []PageID) ([][]byte, error) {
	s.Prefetch(ids...)
	out := make([][]byte, len(ids))
	for i, id := range ids {
		data, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// Drain waits for every in-flight fetch to land and returns the session's
// stats, counting never-claimed fetches as wasted. It must be called
// before the query returns — fetch goroutines touch the underlying pool
// and store, and a snapshot query's epoch pin (which keeps its pages from
// being reclaimed and recycled) is released when the query returns. The
// session must not be used after Drain.
func (s *PrefetchSession) Drain() PrefetchStats {
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Wasted += len(s.inflight)
	for id := range s.inflight {
		delete(s.inflight, id)
	}
	return s.stats
}
