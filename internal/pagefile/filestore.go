package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// FileStore is a file-backed Store. Page 0 is a metadata page holding the
// magic, page count, free-list head and format version; user pages start
// at 1. Freed pages form an intrusive linked list threaded through their
// first four bytes, so a reopened file recovers its allocator state
// without a separate bitmap.
//
// Two on-disk formats coexist:
//
//   - v1 (legacy): pages are packed at id*PageSize with no integrity
//     metadata. Readable and writable for compatibility; corruption is
//     undetectable.
//   - v2 (current): each physical page slot is PageSize+pageTrailerSize
//     bytes — the logical 4096-byte payload followed by a trailer holding
//     a CRC32-C over the payload and an echo of the PageID. Write seals
//     the trailer; Read verifies it and returns a *ChecksumError (matching
//     ErrChecksum) on mismatch, and a *BadPageError when the ID echo shows
//     the slot holds a different page (a misdirected write). The logical
//     page size seen by every layer above is unchanged, so tree fanout,
//     node capacities and query results are byte-identical across formats.
//
// CreateFileStore writes v2; OpenFileStore accepts both; MigrateFileStore
// upgrades v1 files.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	numPages int // total pages including the header
	freeHead PageID
	liveN    int
	version  int
	scratch  []byte // stride-sized I/O staging buffer, under mu
	stats    Stats
}

const (
	fileMagic = 0x55545245 // "UTRE"

	// fileVersionV1 is implied by a zero version field (pre-checksum files
	// wrote zeros there); fileVersionV2 is the checksummed format.
	fileVersionV1 = 1
	fileVersionV2 = 2

	// pageTrailerSize is the per-page integrity trailer of the v2 format:
	// CRC32-C over the payload (4 bytes) + PageID echo (4 bytes).
	pageTrailerSize = 8

	// headerVersionOff is the byte offset of the format version inside the
	// header page.
	headerVersionOff = 16
)

// castagnoli is the CRC32-C table (the polynomial with hardware support on
// both amd64 and arm64, and the one storage systems conventionally use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadMagic is returned when opening a file that is not a page file.
var ErrBadMagic = errors.New("pagefile: bad magic (not a page file)")

func newFileStore(f *os.File, version int) *FileStore {
	fs := &FileStore{f: f, numPages: 1, freeHead: InvalidPage, version: version}
	fs.scratch = make([]byte, fs.stride())
	return fs
}

// CreateFileStore creates (truncating) a file-backed store at path in the
// current (v2, checksummed) format.
func CreateFileStore(path string) (*FileStore, error) {
	return createFileStore(path, fileVersionV2)
}

// CreateFileStoreV1 creates a store in the legacy unchecksummed v1 format.
// It exists for migration round-trip tests and for producing files older
// deployments can read; new files should use CreateFileStore.
func CreateFileStoreV1(path string) (*FileStore, error) {
	return createFileStore(path, fileVersionV1)
}

func createFileStore(path string, version int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	fs := newFileStore(f, version)
	if err := fs.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing store, auto-detecting the format from
// the header's version field (zero = v1, written before the field
// existed).
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, PageSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != fileMagic {
		f.Close()
		return nil, ErrBadMagic
	}
	version := int(binary.LittleEndian.Uint32(buf[headerVersionOff:]))
	switch version {
	case 0, fileVersionV1:
		version = fileVersionV1
	case fileVersionV2:
	default:
		f.Close()
		return nil, fmt.Errorf("pagefile: unsupported format version %d", version)
	}
	fs := newFileStore(f, version)
	fs.numPages = int(binary.LittleEndian.Uint32(buf[4:]))
	fs.freeHead = PageID(binary.LittleEndian.Uint32(buf[8:]))
	fs.liveN = int(binary.LittleEndian.Uint32(buf[12:]))
	if version == fileVersionV2 {
		// The header page carries a trailer too; verify it before trusting
		// the allocator state we just decoded.
		if err := fs.verifyLocked(0); err != nil {
			f.Close()
			return nil, err
		}
	}
	return fs, nil
}

// Version reports the on-disk format version (1 = legacy unchecksummed,
// 2 = checksummed).
func (fs *FileStore) Version() int { return fs.version }

// stride is the physical bytes one page occupies on disk.
func (fs *FileStore) stride() int64 {
	if fs.version >= fileVersionV2 {
		return PageSize + pageTrailerSize
	}
	return PageSize
}

func (fs *FileStore) off(id PageID) int64 { return int64(id) * fs.stride() }

// writePageLocked persists buf (len PageSize) as page id, sealing the v2
// trailer. Caller holds fs.mu.
func (fs *FileStore) writePageLocked(id PageID, buf []byte) error {
	if fs.version < fileVersionV2 {
		_, err := fs.f.WriteAt(buf, fs.off(id))
		return err
	}
	copy(fs.scratch, buf)
	binary.LittleEndian.PutUint32(fs.scratch[PageSize:], crc32.Checksum(buf, castagnoli))
	binary.LittleEndian.PutUint32(fs.scratch[PageSize+4:], uint32(id))
	_, err := fs.f.WriteAt(fs.scratch, fs.off(id))
	return err
}

// readPageLocked reads page id into buf (len PageSize), verifying the v2
// trailer. Caller holds fs.mu.
func (fs *FileStore) readPageLocked(id PageID, buf []byte) error {
	if fs.version < fileVersionV2 {
		_, err := fs.f.ReadAt(buf, fs.off(id))
		return err
	}
	if _, err := fs.f.ReadAt(fs.scratch, fs.off(id)); err != nil {
		return err
	}
	want := binary.LittleEndian.Uint32(fs.scratch[PageSize:])
	got := crc32.Checksum(fs.scratch[:PageSize], castagnoli)
	if want != got {
		return &ChecksumError{Page: id, Want: want, Got: got}
	}
	if echo := PageID(binary.LittleEndian.Uint32(fs.scratch[PageSize+4:])); echo != id {
		return &BadPageError{Page: id, Reason: fmt.Sprintf("trailer names page %d (misdirected write)", echo)}
	}
	copy(buf, fs.scratch[:PageSize])
	return nil
}

func (fs *FileStore) writeHeader() error {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:], fileMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(fs.numPages))
	binary.LittleEndian.PutUint32(buf[8:], uint32(fs.freeHead))
	binary.LittleEndian.PutUint32(buf[12:], uint32(fs.liveN))
	if fs.version >= fileVersionV2 {
		binary.LittleEndian.PutUint32(buf[headerVersionOff:], uint32(fs.version))
	}
	return fs.writePageLocked(0, buf)
}

// Abort closes the file without writing the header — the crash-simulation
// exit: the file keeps exactly the pages individual operations already
// made durable, as if the process died.
func (fs *FileStore) Abort() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.f.Close()
}

// Close flushes the header and closes the file.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.writeHeader(); err != nil {
		fs.f.Close()
		return err
	}
	return fs.f.Close()
}

func (fs *FileStore) Alloc() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.Allocs.Add(1)
	zero := make([]byte, PageSize)
	if fs.freeHead != InvalidPage {
		id := fs.freeHead
		buf := make([]byte, PageSize)
		if err := fs.readPageLocked(id, buf); err != nil {
			return InvalidPage, err
		}
		fs.freeHead = PageID(binary.LittleEndian.Uint32(buf[0:]))
		if err := fs.writePageLocked(id, zero); err != nil {
			return InvalidPage, err
		}
		fs.liveN++
		return id, fs.writeHeader()
	}
	id := PageID(fs.numPages)
	if err := fs.writePageLocked(id, zero); err != nil {
		return InvalidPage, err
	}
	fs.numPages++
	fs.liveN++
	return id, fs.writeHeader()
}

func (fs *FileStore) checkRange(id PageID) error {
	if id == 0 || int(id) >= fs.numPages {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	return nil
}

func (fs *FileStore) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	fs.stats.Reads.Add(1)
	return fs.readPageLocked(id, buf)
}

func (fs *FileStore) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	fs.stats.Writes.Add(1)
	return fs.writePageLocked(id, buf)
}

func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	fs.stats.Frees.Add(1)
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:], uint32(fs.freeHead))
	if err := fs.writePageLocked(id, buf); err != nil {
		return err
	}
	fs.freeHead = id
	fs.liveN--
	return fs.writeHeader()
}

// verifyLocked checks page id's trailer without copying the payload out or
// charging Stats. Caller holds fs.mu; v1 files verify trivially.
func (fs *FileStore) verifyLocked(id PageID) error {
	if fs.version < fileVersionV2 {
		return nil
	}
	if _, err := fs.f.ReadAt(fs.scratch, fs.off(id)); err != nil {
		return err
	}
	want := binary.LittleEndian.Uint32(fs.scratch[PageSize:])
	got := crc32.Checksum(fs.scratch[:PageSize], castagnoli)
	if want != got {
		return &ChecksumError{Page: id, Want: want, Got: got}
	}
	if echo := PageID(binary.LittleEndian.Uint32(fs.scratch[PageSize+4:])); echo != id {
		return &BadPageError{Page: id, Reason: fmt.Sprintf("trailer names page %d (misdirected write)", echo)}
	}
	return nil
}

// VerifyPage implements PageVerifier: it checks the page's integrity
// trailer without returning contents and without charging the read to
// Stats, so scrubbing stays invisible to I/O-cost experiments. On v1
// files there is nothing to verify and it returns nil.
func (fs *FileStore) VerifyPage(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	return fs.verifyLocked(id)
}

// CorruptPayload implements Corrupter: flips one payload bit on disk
// WITHOUT resealing the trailer, modelling silent media corruption. On a
// v2 file the next Read of the page returns a *ChecksumError; on v1 the
// flip is undetectable.
func (fs *FileStore) CorruptPayload(id PageID, bit int) error {
	if bit < 0 || bit >= PageSize*8 {
		return fmt.Errorf("pagefile: corrupt bit %d out of range", bit)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	var b [1]byte
	off := fs.off(id) + int64(bit/8)
	if _, err := fs.f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err := fs.f.WriteAt(b[:], off)
	return err
}

// WriteTorn implements TornWriter: persists only the first n bytes of
// buf, leaving the page tail AND the trailer at their previous contents —
// a torn write. On a v2 file the stale trailer no longer covers the mixed
// payload, so the tear is detected on the next Read.
func (fs *FileStore) WriteTorn(id PageID, buf []byte, n int) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	if n < 0 || n > PageSize {
		return fmt.Errorf("pagefile: torn length %d out of range", n)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	fs.stats.Writes.Add(1)
	_, err := fs.f.WriteAt(buf[:n], fs.off(id))
	return err
}

// SweepLeaked returns every page that is neither in `reachable` nor on the
// free list to the free list, and reports the ids it reclaimed. This is
// the open-time crash repair: a crash between an epoch's publication
// (metadata write) and its garbage drain leaves the superseded shadow
// pages allocated but unreferenced, and a crash mid-operation can leak
// fresh pages the aborted batch never published. The caller passes the
// set of pages reachable from the recovered root (nodes, data pages,
// metadata). Each leaked page is linked into the free list before the
// header is rewritten, so a crash mid-sweep at worst leaves some leaks for
// the next sweep — never a corrupt list.
//
// Free-list link pages are read without checksum verification: a page
// torn while being freed would otherwise wedge recovery, and the link
// threading is validated structurally (cycle and range checks) anyway.
func (fs *FileStore) SweepLeaked(reachable map[PageID]bool) ([]PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	onFree := make(map[PageID]bool)
	var link [4]byte
	for id := fs.freeHead; id != InvalidPage; {
		if onFree[id] || id == 0 || int(id) >= fs.numPages {
			return nil, fmt.Errorf("pagefile: corrupt free list at page %d", id)
		}
		onFree[id] = true
		if _, err := fs.f.ReadAt(link[:], fs.off(id)); err != nil {
			return nil, err
		}
		id = PageID(binary.LittleEndian.Uint32(link[:]))
	}
	var leaked []PageID
	page := make([]byte, PageSize)
	for p := 1; p < fs.numPages; p++ {
		id := PageID(p)
		if reachable[id] || onFree[id] {
			continue
		}
		for i := range page {
			page[i] = 0
		}
		binary.LittleEndian.PutUint32(page[0:], uint32(fs.freeHead))
		if err := fs.writePageLocked(id, page); err != nil {
			return leaked, err
		}
		fs.freeHead = id
		fs.liveN--
		fs.stats.Frees.Add(1)
		leaked = append(leaked, id)
	}
	if len(leaked) == 0 {
		return nil, nil
	}
	return leaked, fs.writeHeader()
}

func (fs *FileStore) NumPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.liveN
}

func (fs *FileStore) Stats() *Stats { return &fs.stats }

// MigrateFileStore copies the v1 (or v2) page file at srcPath into a new
// v2 checksummed file at dstPath, preserving page IDs, the free list and
// allocator state, and sealing a fresh trailer on every page. Reading a
// corrupt v2 source page fails the migration (corruption must not be
// laundered into a freshly-sealed trailer). The source is opened
// read-write but not modified; dstPath is truncated.
func MigrateFileStore(srcPath, dstPath string) error {
	src, err := OpenFileStore(srcPath)
	if err != nil {
		return fmt.Errorf("pagefile: migrate: opening source: %w", err)
	}
	defer src.f.Close()
	dst, err := createFileStore(dstPath, fileVersionV2)
	if err != nil {
		return fmt.Errorf("pagefile: migrate: creating destination: %w", err)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	dst.numPages = src.numPages
	dst.freeHead = src.freeHead
	dst.liveN = src.liveN
	buf := make([]byte, PageSize)
	for p := 1; p < src.numPages; p++ {
		id := PageID(p)
		if err := src.readPageLocked(id, buf); err != nil {
			dst.f.Close()
			return fmt.Errorf("pagefile: migrate: reading page %d: %w", id, err)
		}
		if err := dst.writePageLocked(id, buf); err != nil {
			dst.f.Close()
			return fmt.Errorf("pagefile: migrate: writing page %d: %w", id, err)
		}
	}
	if err := dst.writeHeader(); err != nil {
		dst.f.Close()
		return fmt.Errorf("pagefile: migrate: writing header: %w", err)
	}
	return dst.f.Close()
}
