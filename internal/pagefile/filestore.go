package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// FileStore is a file-backed Store. Page 0 is a metadata page holding the
// magic, page count and free-list head; user pages start at 1. Freed pages
// form an intrusive linked list threaded through their first four bytes, so
// a reopened file recovers its allocator state without a separate bitmap.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	numPages int // total pages including the header
	freeHead PageID
	liveN    int
	stats    Stats
}

const fileMagic = 0x55545245 // "UTRE"

// ErrBadMagic is returned when opening a file that is not a page file.
var ErrBadMagic = errors.New("pagefile: bad magic (not a page file)")

// CreateFileStore creates (truncating) a file-backed store at path.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{f: f, numPages: 1, freeHead: InvalidPage}
	if err := fs.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing store.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{f: f}
	buf := make([]byte, PageSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != fileMagic {
		f.Close()
		return nil, ErrBadMagic
	}
	fs.numPages = int(binary.LittleEndian.Uint32(buf[4:]))
	fs.freeHead = PageID(binary.LittleEndian.Uint32(buf[8:]))
	fs.liveN = int(binary.LittleEndian.Uint32(buf[12:]))
	return fs, nil
}

func (fs *FileStore) writeHeader() error {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:], fileMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(fs.numPages))
	binary.LittleEndian.PutUint32(buf[8:], uint32(fs.freeHead))
	binary.LittleEndian.PutUint32(buf[12:], uint32(fs.liveN))
	_, err := fs.f.WriteAt(buf, 0)
	return err
}

// Abort closes the file without writing the header — the crash-simulation
// exit: the file keeps exactly the pages individual operations already
// made durable, as if the process died.
func (fs *FileStore) Abort() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.f.Close()
}

// Close flushes the header and closes the file.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.writeHeader(); err != nil {
		fs.f.Close()
		return err
	}
	return fs.f.Close()
}

func (fs *FileStore) Alloc() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.Allocs.Add(1)
	zero := make([]byte, PageSize)
	if fs.freeHead != InvalidPage {
		id := fs.freeHead
		buf := make([]byte, PageSize)
		if _, err := fs.f.ReadAt(buf, int64(id)*PageSize); err != nil {
			return InvalidPage, err
		}
		fs.freeHead = PageID(binary.LittleEndian.Uint32(buf[0:]))
		if _, err := fs.f.WriteAt(zero, int64(id)*PageSize); err != nil {
			return InvalidPage, err
		}
		fs.liveN++
		return id, fs.writeHeader()
	}
	id := PageID(fs.numPages)
	if _, err := fs.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return InvalidPage, err
	}
	fs.numPages++
	fs.liveN++
	return id, fs.writeHeader()
}

func (fs *FileStore) checkRange(id PageID) error {
	if id == 0 || int(id) >= fs.numPages {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	return nil
}

func (fs *FileStore) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	fs.stats.Reads.Add(1)
	_, err := fs.f.ReadAt(buf, int64(id)*PageSize)
	return err
}

func (fs *FileStore) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	fs.stats.Writes.Add(1)
	_, err := fs.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkRange(id); err != nil {
		return err
	}
	fs.stats.Frees.Add(1)
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:], uint32(fs.freeHead))
	if _, err := fs.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return err
	}
	fs.freeHead = id
	fs.liveN--
	return fs.writeHeader()
}

// SweepLeaked returns every page that is neither in `reachable` nor on the
// free list to the free list, and reports the ids it reclaimed. This is
// the open-time crash repair: a crash between an epoch's publication
// (metadata write) and its garbage drain leaves the superseded shadow
// pages allocated but unreferenced, and a crash mid-operation can leak
// fresh pages the aborted batch never published. The caller passes the
// set of pages reachable from the recovered root (nodes, data pages,
// metadata). Each leaked page is linked into the free list before the
// header is rewritten, so a crash mid-sweep at worst leaves some leaks for
// the next sweep — never a corrupt list.
func (fs *FileStore) SweepLeaked(reachable map[PageID]bool) ([]PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	onFree := make(map[PageID]bool)
	buf := make([]byte, PageSize)
	for id := fs.freeHead; id != InvalidPage; {
		if onFree[id] || id == 0 || int(id) >= fs.numPages {
			return nil, fmt.Errorf("pagefile: corrupt free list at page %d", id)
		}
		onFree[id] = true
		if _, err := fs.f.ReadAt(buf, int64(id)*PageSize); err != nil {
			return nil, err
		}
		id = PageID(binary.LittleEndian.Uint32(buf[0:]))
	}
	var leaked []PageID
	for p := 1; p < fs.numPages; p++ {
		id := PageID(p)
		if reachable[id] || onFree[id] {
			continue
		}
		link := make([]byte, PageSize)
		binary.LittleEndian.PutUint32(link[0:], uint32(fs.freeHead))
		if _, err := fs.f.WriteAt(link, int64(id)*PageSize); err != nil {
			return leaked, err
		}
		fs.freeHead = id
		fs.liveN--
		fs.stats.Frees.Add(1)
		leaked = append(leaked, id)
	}
	if len(leaked) == 0 {
		return nil, nil
	}
	return leaked, fs.writeHeader()
}

func (fs *FileStore) NumPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.liveN
}

func (fs *FileStore) Stats() *Stats { return &fs.stats }
