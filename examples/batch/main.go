// Command batch demonstrates the parallel batch query engine: one shared
// ConcurrentTree serving a fan-out of probabilistic range queries, with the
// aggregated cost metrics the paper reports per query.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/uncertain"
)

func main() {
	ct, err := uncertain.NewConcurrentTree(uncertain.Config{Dimensions: 2})
	if err != nil {
		panic(err)
	}
	defer ct.Close()

	// 2000 delivery vehicles with uncertain GPS positions.
	rng := rand.New(rand.NewSource(7))
	for id := int64(0); id < 2000; id++ {
		center := uncertain.Pt(rng.Float64()*10000, rng.Float64()*10000)
		if err := ct.Insert(id, uncertain.UniformCircle(center, 30)); err != nil {
			panic(err)
		}
	}

	// 64 dispatch zones to poll: "which vehicles are in this zone with
	// probability ≥ 0.7?"
	queries := make([]uncertain.RangeQuery, 64)
	for i := range queries {
		cx, cy := rng.Float64()*10000, rng.Float64()*10000
		queries[i] = uncertain.RangeQuery{
			Rect: uncertain.Box(uncertain.Pt(cx-300, cy-300), uncertain.Pt(cx+300, cy+300)),
			Prob: 0.7,
		}
	}

	// The whole batch runs under a deadline: if it passes, the in-flight
	// queries stop mid-traversal and SearchBatch returns the completed
	// prefix with ctx.Err(). EngineOptions.QueryTimeout would bound each
	// query individually instead.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	eng := uncertain.NewQueryEngine(ct, uncertain.EngineOptions{Workers: 4})
	results, stats, err := eng.SearchBatch(ctx, queries)
	if err != nil {
		panic(err)
	}

	total := 0
	for _, r := range results {
		total += len(r)
	}
	fmt.Printf("%d queries on %d workers in %v (%.0f q/s)\n",
		stats.Queries, stats.Workers, stats.WallTime.Round(1000), stats.QueriesPerSec)
	fmt.Printf("%d vehicles matched; %.0f%% validated without probability computation\n",
		total, stats.ValidatedPct)
	fmt.Printf("avg %.1f node accesses and %.1f prob computations per query; cache hit %.0f%%\n",
		stats.MeanNodeAccesses, stats.MeanProbComputations, 100*stats.CacheHitRate)
}
