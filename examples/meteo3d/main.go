// Meteorology: the paper's second motivating scenario (Section 1).
//
// A network of stations reports (temperature, humidity, UV index) every 30
// minutes; between reports the true atmospheric state drifts, modelled by a
// Gaussian around the last reading truncated to each sensor's physical
// range. The query "identify the regions whose temperature is in [75, 80]F,
// humidity in [40, 60]% and UV index in [4.5, 6] with at least 70%
// likelihood" is a 3D probabilistic range search.
//
//	go run ./examples/meteo3d
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/uncertain"
)

const numStations = 3000

func main() {
	tree, err := uncertain.NewTree(uncertain.Config{
		Dimensions:      3,
		ExactRefinement: true, // truncated Gaussian products are closed form
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	rng := rand.New(rand.NewSource(30))
	type reading struct{ temp, hum, uv float64 }
	readings := make(map[int64]reading, numStations)
	for id := int64(0); id < numStations; id++ {
		r := reading{
			temp: 40 + rng.Float64()*60, // °F
			hum:  10 + rng.Float64()*85, // %
			uv:   rng.Float64() * 11,    // index
		}
		readings[id] = r
		// Uncertainty since the last report: σ = (1.2°F, 3%, 0.25) with the
		// region capped at ±3σ.
		sig := []float64{1.2, 3, 0.25}
		region := uncertain.Box(
			uncertain.Pt(r.temp-3*sig[0], r.hum-3*sig[1], r.uv-3*sig[2]),
			uncertain.Pt(r.temp+3*sig[0], r.hum+3*sig[1], r.uv+3*sig[2]),
		)
		mean := uncertain.Pt(r.temp, r.hum, r.uv)
		if err := tree.Insert(id, uncertain.TruncatedGaussianBox(region, mean, sig)); err != nil {
			log.Fatal(err)
		}
	}

	// The paper's query, verbatim: temperature [75, 80], humidity [40, 60],
	// UV [4.5, 6] — swept over likelihood thresholds.
	q := uncertain.Box(uncertain.Pt(75, 40, 4.5), uncertain.Pt(80, 60, 6))
	for _, pq := range []float64{0.3, 0.5, 0.7} {
		results, stats, err := tree.Search(context.Background(), q, pq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("regions matching T∈[75,80] H∈[40,60] UV∈[4.5,6] with P ≥ %.1f: %d\n", pq, len(results))
		for i, r := range results {
			if i == 5 {
				fmt.Printf("  … and %d more\n", len(results)-5)
				break
			}
			rd := readings[r.ID]
			fmt.Printf("  station %4d (last report T=%.1f H=%.0f UV=%.1f)\n", r.ID, rd.temp, rd.hum, rd.uv)
		}
		fmt.Printf("  cost: %d node accesses, %d of %d stations needed probability computation\n",
			stats.NodeAccesses, stats.ProbComputations, tree.Len())
	}
}
