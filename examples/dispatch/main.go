// Taxi dispatch: nearest-neighbor search over uncertain positions.
//
// A fleet reports positions with report-threshold uncertainty (as in
// examples/lbs). A dispatcher wants the taxis with the smallest *expected*
// distance to a pickup point — the expected-distance k-NN query the U-tree
// paper lists as future work, implemented here on top of the index. The
// fleet is loaded with STR bulk loading (another extension) since dispatch
// systems ingest fleet snapshots in batches.
//
//	go run ./examples/dispatch
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/uncertain"
)

const (
	fleetSize = 8000
	cityKm    = 10000.0
	uncertRad = 200.0
)

func main() {
	tree, err := uncertain.NewTree(uncertain.Config{
		Dimensions:        2,
		MonteCarloSamples: 4000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Batch-ingest the fleet snapshot.
	rng := rand.New(rand.NewSource(99))
	batch := make(map[int64]uncertain.PDF, fleetSize)
	for id := int64(0); id < fleetSize; id++ {
		x := uncertRad + rng.Float64()*(cityKm-2*uncertRad)
		y := uncertRad + rng.Float64()*(cityKm-2*uncertRad)
		// Taxis heading somewhere specific are better modelled by a
		// two-mode mixture: near the last report or near the next corner.
		if id%5 == 0 {
			batch[id] = uncertain.MixturePDF([]uncertain.PDF{
				uncertain.UniformCircle(uncertain.Pt(x, y), uncertRad),
				uncertain.UniformCircle(uncertain.Pt(
					clamp(x+300, uncertRad, cityKm-uncertRad),
					clamp(y+150, uncertRad, cityKm-uncertRad)), uncertRad/2),
			}, []float64{0.7, 0.3})
		} else {
			batch[id] = uncertain.UniformCircle(uncertain.Pt(x, y), uncertRad)
		}
	}
	if err := tree.BulkLoad(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk-loaded %d taxis\n", tree.Len())

	// A pickup request at the station square.
	pickup := uncertain.Pt(5200, 4800)
	nns, stats, err := tree.NearestNeighbors(context.Background(), pickup, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 best taxis for pickup at %v "+
		"(%d node accesses, %d expected-distance evaluations over %d taxis):\n",
		pickup, stats.NodeAccesses, stats.DistanceComps, tree.Len())
	for rank, n := range nns {
		fmt.Printf("  #%d taxi %4d  expected distance %.0f m\n", rank+1, n.ID, n.ExpectedDist)
	}

	// Cross-check with a prob-range query: taxis almost surely within
	// 800 m of the pickup.
	nearbox := uncertain.Box(
		uncertain.Pt(pickup[0]-800, pickup[1]-800),
		uncertain.Pt(pickup[0]+800, pickup[1]+800))
	sure, _, err := tree.Search(context.Background(), nearbox, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxis within the 800 m box with P ≥ 0.9: %d\n", len(sure))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
