// Command sharded demonstrates the sharded scatter-gather index: a fleet
// tracker ingesting a live stream of position updates while dashboards
// query continuously. The ShardedTree keeps queries flowing because a
// position update locks only the shard owning that vehicle, and each query
// fans out across all shards, overlapping their (simulated) page I/O.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/uncertain"
)

func main() {
	st, err := uncertain.NewShardedTree(4, uncertain.Config{
		Dimensions:      2,
		ExactRefinement: true,
	})
	if err != nil {
		panic(err)
	}
	defer st.Close()

	// 4000 vehicles with uncertain GPS positions, bulk-loaded and split
	// across the shards by ID hash.
	rng := rand.New(rand.NewSource(7))
	fleet := make(map[int64]uncertain.PDF, 4000)
	for id := int64(0); id < 4000; id++ {
		center := uncertain.Pt(rng.Float64()*10000, rng.Float64()*10000)
		fleet[id] = uncertain.UniformCircle(center, 30)
	}
	if err := st.BulkLoad(fleet); err != nil {
		panic(err)
	}
	fmt.Printf("loaded %d vehicles across %d shards\n", st.Len(), st.Shards())

	// Model disk-resident storage: every physical page access now costs
	// 2 ms, which is what the scatter-gather overlaps.
	st.SetSimulatedPageLatency(2 * time.Millisecond)

	// A live update stream: vehicles re-report positions while we query.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		wrng := rand.New(rand.NewSource(99))
		for id := int64(100000); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			center := uncertain.Pt(wrng.Float64()*10000, wrng.Float64()*10000)
			if err := st.Insert(id, uncertain.UniformCircle(center, 30)); err != nil {
				panic(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Dashboards poll zones: "vehicles in this zone with probability ≥ 0.7".
	start := time.Now()
	const polls = 40
	found := 0
	var agg uncertain.Stats
	for i := 0; i < polls; i++ {
		cx, cy := rng.Float64()*10000, rng.Float64()*10000
		zone := uncertain.Box(uncertain.Pt(cx-400, cy-400), uncertain.Pt(cx+400, cy+400))
		results, stats, err := st.Search(context.Background(), zone, 0.7)
		if err != nil {
			panic(err)
		}
		found += len(results)
		agg.Add(stats)
	}
	elapsed := time.Since(start)
	close(stop)
	<-done

	fmt.Printf("%d zone polls in %v (%.0f q/s) while ingesting updates\n",
		polls, elapsed.Round(time.Millisecond), float64(polls)/elapsed.Seconds())
	fmt.Printf("%d vehicles matched; %d of %d validated straight from PCRs\n",
		found, agg.Validated, agg.Results)
	fmt.Printf("%.1f node accesses per poll, summed across shards\n",
		float64(agg.NodeAccesses)/polls)
}
