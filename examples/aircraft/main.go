// Aircraft tracking: the paper's 3D evaluation dataset (Section 6), used
// here as an application. Aircraft fly segments between airports; their
// reported (x, y, altitude) positions carry spherical uncertainty of radius
// 125. An air-traffic question like "which aircraft are inside this
// airspace block with ≥ 60% probability?" is a 3D prob-range query.
//
//	go run ./examples/aircraft
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/uncertain"
)

func main() {
	// Generate a scaled-down Aircraft dataset exactly as the paper
	// describes (airports from a clustered map, aircraft on random
	// airport-pair segments, uniform altitudes).
	objs := dataset.Generate(dataset.Config{Name: dataset.Aircraft, Scale: 0.05, Seed: 7})

	tree, err := uncertain.NewTree(uncertain.Config{
		Dimensions:      3,
		ExactRefinement: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	for _, o := range objs {
		if err := tree.Insert(o.ID, o.PDF); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d aircraft (3D, spherical uncertainty r=125)\n", tree.Len())

	// An airspace block: 2000×2000 horizontally, altitudes 3000–5000.
	block := uncertain.Box(
		uncertain.Pt(4000, 4000, 3000),
		uncertain.Pt(6000, 6000, 5000),
	)
	for _, pq := range []float64{0.3, 0.6, 0.9} {
		results, stats, err := tree.Search(context.Background(), block, pq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("aircraft in block with P ≥ %.1f: %4d  (%d node accesses, %d probability computations, %d validated)\n",
			pq, len(results), stats.NodeAccesses, stats.ProbComputations, stats.Validated)
	}

	// Conflict probe around a specific aircraft: a tight cube centered on
	// its reported position, high threshold.
	target := objs[0]
	c := target.PDF.Center()
	probe := uncertain.Box(
		uncertain.Pt(c[0]-300, c[1]-300, c[2]-300),
		uncertain.Pt(c[0]+300, c[1]+300, c[2]+300),
	)
	results, _, err := tree.Search(context.Background(), probe, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aircraft almost surely within 300 of aircraft %d's report: %d\n",
		target.ID, len(results))
}
