// Quickstart: build a U-tree over a handful of uncertain objects and run
// probabilistic range queries against it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/uncertain"
)

func main() {
	// A 2D index with exact refinement (closed-form probabilities) so the
	// output is deterministic.
	tree, err := uncertain.NewTree(uncertain.Config{
		Dimensions:      2,
		ExactRefinement: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Three moving clients whose exact positions are unknown: each lies
	// uniformly in a circle of radius 30 around its last report.
	clients := map[int64]uncertain.Point{
		1: uncertain.Pt(100, 100),
		2: uncertain.Pt(200, 140),
		3: uncertain.Pt(400, 380),
	}
	for id, last := range clients {
		if err := tree.Insert(id, uncertain.UniformCircle(last, 30)); err != nil {
			log.Fatal(err)
		}
	}

	// One sensor with Gaussian noise truncated to its calibration box.
	sensorBox := uncertain.Box(uncertain.Pt(150, 300), uncertain.Pt(250, 400))
	if err := tree.Insert(4, uncertain.TruncatedGaussianBox(
		sensorBox, uncertain.Pt(200, 350), []float64{25, 25})); err != nil {
		log.Fatal(err)
	}

	// "Which objects are in the district [80,80]x[230,230] with at least
	// 60% probability?" Queries are context-first: this one carries a
	// 100 ms deadline — past it the traversal stops within about one page
	// latency and returns context.DeadlineExceeded with whatever partial
	// results it had (on this tiny in-memory tree it always finishes).
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	district := uncertain.Box(uncertain.Pt(80, 80), uncertain.Pt(230, 230))
	results, stats, err := tree.Search(ctx, district, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("district query (pq = 0.6): %d result(s)\n", len(results))
	for _, r := range results {
		if r.Validated {
			fmt.Printf("  object %d — validated without computing its probability\n", r.ID)
		} else {
			fmt.Printf("  object %d — appearance probability %.3f\n", r.ID, r.Prob)
		}
	}
	fmt.Printf("cost: %d node accesses, %d probability computations\n",
		stats.NodeAccesses, stats.ProbComputations)

	// Tighten the threshold: a borderline object drops out. Per-query
	// options tune one query without touching the index — here a top-2
	// early cut.
	results, _, err = tree.Search(ctx, district, 0.95, uncertain.WithLimit(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("district query (pq = 0.95, limit 2): %d result(s)\n", len(results))
}
