// Location-based services: the paper's motivating scenario (Section 1).
//
// Moving clients report their position only when they stray more than a
// distance threshold from their last report, so the server knows each
// client only up to a circular uncertainty region. The query "find the
// clients currently in the downtown area with probability ≥ 80%" is a
// probabilistic range search.
//
//	go run ./examples/lbs
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/uncertain"
)

const (
	cityExtent        = 10000.0 // city coordinates in meters
	distanceThreshold = 250.0   // report threshold = uncertainty radius
	numClients        = 5000
)

func main() {
	tree, err := uncertain.NewTree(uncertain.Config{
		Dimensions:      2,
		ExactRefinement: true, // uniform circles have closed-form probabilities
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Clients cluster around a few hubs, as in a real city.
	rng := rand.New(rand.NewSource(2005))
	hubs := [][2]float64{{2500, 2500}, {7000, 3000}, {5000, 7500}, {8500, 8500}}
	for id := int64(0); id < numClients; id++ {
		hub := hubs[rng.Intn(len(hubs))]
		x := clamp(hub[0]+rng.NormFloat64()*1200, distanceThreshold, cityExtent-distanceThreshold)
		y := clamp(hub[1]+rng.NormFloat64()*1200, distanceThreshold, cityExtent-distanceThreshold)
		last := uncertain.Pt(x, y)
		if err := tree.Insert(id, uncertain.UniformCircle(last, distanceThreshold)); err != nil {
			log.Fatal(err)
		}
	}

	// Downtown is a 1.5 km square around the first hub.
	downtown := uncertain.Box(uncertain.Pt(1750, 1750), uncertain.Pt(3250, 3250))
	for _, pq := range []float64{0.5, 0.8, 0.95} {
		results, stats, err := tree.Search(context.Background(), downtown, pq)
		if err != nil {
			log.Fatal(err)
		}
		validated := 0
		for _, r := range results {
			if r.Validated {
				validated++
			}
		}
		fmt.Printf("clients downtown with P ≥ %.2f: %4d  "+
			"(%d/%d validated for free; %d node accesses, %d probability computations)\n",
			pq, len(results), validated, len(results), stats.NodeAccesses, stats.ProbComputations)
	}

	// A client reports a fresh position: delete + reinsert (fully dynamic).
	moved := int64(7)
	if err := tree.Delete(moved); err != nil {
		log.Fatal(err)
	}
	if err := tree.Insert(moved, uncertain.UniformCircle(uncertain.Pt(2500, 2500), distanceThreshold)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client %d re-reported downtown; index now holds %d clients\n", moved, tree.Len())
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
