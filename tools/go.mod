module repro/tools

go 1.24

tool (
	golang.org/x/vuln/cmd/govulncheck
	honnef.co/go/tools/cmd/staticcheck
)

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
