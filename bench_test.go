// Benchmark harness: one testing.B benchmark per table/figure of the
// U-tree paper's evaluation (Section 6), plus the DESIGN.md ablations.
// Each benchmark regenerates its experiment at a reduced dataset scale and
// reports the paper's metrics as custom benchmark outputs
// (node-accesses/query, prob-computations/query, era-model seconds, …).
//
// Paper-scale runs: `go run ./cmd/ubench -experiment all -scale 1`.
package repro_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/workload"
	"repro/uncertain"
)

// benchConfig keeps `go test -bench=.` tractable while preserving shapes.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:     0.01,
		Queries:   10,
		MCSamples: 1000,
		Seed:      42,
	}
}

// BenchmarkFig7MonteCarlo regenerates Figure 7: monte-carlo error and
// per-computation cost versus sample count n1.
func BenchmarkFig7MonteCarlo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchConfig(), []int{1000, 10000, 100000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(100*last.Err2D, "%err-2D@n1max")
			b.ReportMetric(100*last.Err3D, "%err-3D@n1max")
			b.ReportMetric(float64(last.CostPerComp.Microseconds()), "µs/prob-comp")
		}
	}
}

// BenchmarkFig8CatalogSize regenerates Figure 8: U-PCR query cost versus
// catalog size m.
func BenchmarkFig8CatalogSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig8(benchConfig(), []int{3, 6, 9, 12}, []float64{0.3, 0.6, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				if p.Dataset == dataset.LB {
					b.ReportMetric(p.Cost.TotalCostSec, "LB-cost@m"+itoa(p.M))
				}
			}
		}
	}
}

// BenchmarkTable1Size regenerates Table 1: index sizes of the U-tree versus
// U-PCR.
func BenchmarkTable1Size(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.UPCRBytes)/float64(r.UTreeBytes), string(r.Dataset)+"-size-ratio")
			}
		}
	}
}

// BenchmarkFig9QuerySize regenerates Figure 9: cost versus query extent qs
// at pq = 0.6 (all datasets, both structures).
func BenchmarkFig9QuerySize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9(benchConfig(), []float64{500, 1500, 2500})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSweep(b, points)
		}
	}
}

// BenchmarkFig10Threshold regenerates Figure 10: cost versus probability
// threshold pq at qs = 1500.
func BenchmarkFig10Threshold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig10(benchConfig(), []float64{0.3, 0.6, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSweep(b, points)
		}
	}
}

// BenchmarkFig11Updates regenerates Figure 11: per-insertion and
// per-deletion overhead of the U-tree.
func BenchmarkFig11Updates(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.InsertIOCostSec+r.InsertCPUSec, string(r.Dataset)+"-ins-s/op")
				b.ReportMetric(r.DeleteIOCostSec+r.DeleteCPUSec, string(r.Dataset)+"-del-s/op")
			}
		}
	}
}

// BenchmarkAblationSplit compares split strategies (DESIGN.md §7).
func BenchmarkAblationSplit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationSplit(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(p.Metrics.NodeAccesses, metricUnit(p.Label)+"-io/query")
			}
		}
	}
}

// BenchmarkAblationReinsert compares forced reinsertion on/off.
func BenchmarkAblationReinsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationReinsert(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(p.Metrics.NodeAccesses, metricUnit(p.Label)+"-io/query")
			}
		}
	}
}

// metricUnit strips characters testing.B forbids in metric units.
func metricUnit(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch r {
		case ' ', '(', ')':
			// skip
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkAblationCatalog sweeps the U-tree catalog size.
func BenchmarkAblationCatalog(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCatalog(benchConfig(), []int{5, 15}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCFB compares CFB vs PCR entries at equal catalog size.
func BenchmarkAblationCFB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCFB(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsert measures raw per-object insertion throughput of the
// U-tree (PCR computation + simplex CFB fitting + tree descent).
func BenchmarkInsert(b *testing.B) {
	objs := dataset.Generate(dataset.Config{Name: dataset.LB, Scale: 0.5, Seed: 1})
	tree, err := core.New(core.Options{Dim: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i%len(objs)]
		o.ID = int64(i) // unique ids as the bench loops past the dataset
		if err := tree.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery measures raw prob-range query latency against a built
// U-tree (LB, qs=1000, pq=0.6).
func BenchmarkQuery(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.05
	objs := dataset.Generate(dataset.Config{Name: dataset.LB, Scale: cfg.Scale, Seed: 1})
	tree, err := core.New(core.Options{Dim: 2, MCSamples: 1000})
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
	queries := benchQueries(objs, 1000, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tree.RangeQuery(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-vs-serial benchmarks: the Fig. 9 workload (LB, qs=1500, pq=0.6)
// over a 2 ms simulated page latency (see pagefile.LatencyStore — the era
// cost model's disk), serial Search loop versus QueryEngine.SearchBatch.
// The fixture is built once and shared; queries are read-only.
var parallelFixture struct {
	once    sync.Once
	ct      *uncertain.ConcurrentTree
	queries []uncertain.RangeQuery
	err     error
}

func parallelBenchFixture(b *testing.B) (*uncertain.ConcurrentTree, []uncertain.RangeQuery) {
	parallelFixture.once.Do(func() {
		cfg := benchConfig()
		cfg.Scale = 0.05
		cfg.Queries = 100
		parallelFixture.ct, parallelFixture.queries, parallelFixture.err =
			experiments.BuildParallelFixture(cfg)
		if parallelFixture.err == nil {
			parallelFixture.ct.SetSimulatedPageLatency(2_000_000) // 2ms in ns
			// One warm pass so every benchmark starts from the same cache.
			for _, q := range parallelFixture.queries {
				if _, _, err := parallelFixture.ct.Search(context.Background(), q.Rect, q.Prob); err != nil {
					parallelFixture.err = err
					return
				}
			}
		}
	})
	if parallelFixture.err != nil {
		b.Fatal(parallelFixture.err)
	}
	return parallelFixture.ct, parallelFixture.queries
}

// BenchmarkFig9SearchHotCache is the CPU-bound hot path: the same Fig. 9
// workload with zero simulated latency and every page warm, so the
// traversal never waits on storage — queries/sec and allocs/op measure the
// decode/filter/refine CPU cost alone. This is the benchmark the CI
// allocation gate watches.
func BenchmarkFig9SearchHotCache(b *testing.B) {
	ct, queries := parallelBenchFixture(b)
	ct.SetSimulatedPageLatency(0)
	defer ct.SetSimulatedPageLatency(2 * time.Millisecond) // restore for later benchmarks
	// One zero-latency pass so every page and decoded node is warm.
	for _, q := range queries {
		if _, _, err := ct.Search(context.Background(), q.Rect, q.Prob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, _, err := ct.Search(context.Background(), q.Rect, q.Prob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkFig9SearchSerial is the baseline: one goroutine, one query at a
// time through ConcurrentTree.Search.
func BenchmarkFig9SearchSerial(b *testing.B) {
	ct, queries := parallelBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, _, err := ct.Search(context.Background(), q.Rect, q.Prob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkFig9SearchBatch sweeps the engine's worker fan-out on the same
// workload; the acceptance bar is ≥ 2× serial queries/sec at 4 workers.
func BenchmarkFig9SearchBatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			ct, queries := parallelBenchFixture(b)
			eng := uncertain.NewQueryEngine(ct, uncertain.EngineOptions{Workers: workers})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.SearchBatch(context.Background(), queries); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkFig9SearchPrefetch sweeps the intra-query prefetch fan-out on
// the same Fig. 9 workload (serial query loop, 2 ms simulated page
// latency): one query overlaps up to N of its own page fetches — a
// level's surviving children concurrently, refinement data pages behind
// the integration — so queries/sec grows with the fan-out even though the
// loop is strictly serial and the container has one core. prefetch=0 is
// the serial baseline; the acceptance bar is ≥ 2× its queries/sec.
func BenchmarkFig9SearchPrefetch(b *testing.B) {
	for _, prefetch := range []int{0, 2, 4, 8} {
		b.Run("prefetch="+itoa(prefetch), func(b *testing.B) {
			ct, queries := parallelBenchFixture(b)
			// The per-query option replaces the removed SetPrefetchWorkers
			// mutator: the shared fixture needs no restore step.
			opt := uncertain.WithPrefetchWorkers(prefetch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, _, err := ct.Search(context.Background(), q.Rect, q.Prob, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkFig9SearchSharded sweeps the shard count on the same Fig. 9
// workload (serial query loop, 2 ms simulated page latency): every query
// scatter-gathers across the shards, overlapping its page stalls, so
// queries/sec grows with shards even on one core. The per-shard buffer
// pool is the single tree's divided by the shard count (constant total
// cache budget); shards=1 is a plain ConcurrentTree. The mixed read/write
// version (with a live writer stream) runs via
// `go run ./cmd/ubench -experiment sharded`.
func BenchmarkFig9SearchSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Scale = 0.05
			cfg.Queries = 100
			idx, queries, err := experiments.BuildShardedFixture(cfg, shards)
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			for _, q := range queries { // warm the page cache
				if _, _, err := idx.Search(context.Background(), q.Rect, q.Prob); err != nil {
					b.Fatal(err)
				}
			}
			if !experiments.ArmLatency(idx, 2*time.Millisecond) {
				b.Fatalf("index %T does not support simulated latency", idx)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, _, err := idx.Search(context.Background(), q.Rect, q.Prob); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// benchQueries builds a simple query mix whose centers follow the data.
func benchQueries(objs []core.Object, qs, pq float64) []core.Query {
	centers := make([]geom.Point, len(objs))
	for i, o := range objs {
		centers[i] = o.PDF.Center()
	}
	w := workload.New(workload.Config{
		QS: qs, PQ: pq, Count: 50, Seed: 3,
		Domain: dataset.Domain, Centers: centers,
	})
	return w.Queries
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func reportSweep(b *testing.B, points []experiments.SweepPoint) {
	var ut, up float64
	for _, p := range points {
		if p.Kind == core.UTree {
			ut += p.Metrics.NodeAccesses
		} else {
			up += p.Metrics.NodeAccesses
		}
	}
	b.ReportMetric(ut, "utree-io-total")
	b.ReportMetric(up, "upcr-io-total")
}
